package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// FloatFold reports floating-point accumulation whose evaluation
// order varies between runs: compound float assignment (+=, -=, *=,
// /=) into an outer variable inside a map-range body, inside a
// goroutine closure, or inside a worker callback handed to the
// internal/par pool. FP addition is not associative — summing the
// same values in a different order changes low-order bits, which is
// exactly the difference the summary golden hash pins across worker
// counts. Fold into per-iteration locals and combine in a fixed
// order, or use the streaming sketch reduction.
var FloatFold = &analysis.Analyzer{
	Name: floatFoldName,
	Doc: "forbid order-dependent floating-point accumulation\n\n" +
		"Float += / *= into a shared variable from inside map iteration, a\n" +
		"goroutine, or an internal/par worker callback sums in an order that\n" +
		"differs between runs and worker counts; FP arithmetic is non-associative,\n" +
		"so the low-order bits differ too, breaking bit-identical summaries.\n" +
		"Accumulate per-shard and reduce in index order (the campaign streaming\n" +
		"reduction exists for exactly this), or annotate with\n" +
		"//ppalint:allow floatfold <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runFloatFold,
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runFloatFold(pass *analysis.Pass) (interface{}, error) {
	dirs := scanDirectives(pass, floatFoldName)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	emit := func(pos token.Pos, msg string) {
		f := enclosingFile(pass, pos)
		if f == nil || isTestFile(pass.Fset, f) || dirs.allowed(pos) {
			return
		}
		pass.Reportf(pos, "%s (or //ppalint:allow floatfold <reason>)", msg)
	}

	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		loop := n.(*ast.RangeStmt)
		if isMapRange(pass, loop) {
			checkFloatFold(pass, loop.Body, loop, "map iteration", emit)
		}
	})

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			checkFloatFold(pass, lit.Body, lit, "a goroutine", emit)
		}
	})

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		forParCallback(pass, n, func(lit *ast.FuncLit) {
			checkFloatFold(pass, lit.Body, lit, "a parallel worker callback", emit)
		})
	})
	return nil, nil
}

// forParCallback calls fn for each func literal passed to the
// internal/par pool in n (when n is such a call): worker callbacks
// run concurrently across workers.
func forParCallback(pass *analysis.Pass, n ast.Node, fn func(lit *ast.FuncLit)) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || callee.Pkg() == nil || !strings.HasSuffix(callee.Pkg().Path(), "internal/par") {
		return
	}
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			fn(lit)
		}
	}
}

// checkFloatFold emits one finding per compound float assignment into
// a variable declared outside boundary, anywhere under body. It is
// the detection core shared by the floatfold analyzer and detclose's
// taint-source scan.
func checkFloatFold(pass *analysis.Pass, body ast.Node, boundary ast.Node, context string, emit func(pos token.Pos, msg string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[st.Tok] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[st.Lhs[0]]
		if !ok {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return true
		}
		id := rootIdent(st.Lhs[0])
		if id == nil {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		if boundary.Pos() <= obj.Pos() && obj.Pos() <= boundary.End() {
			return true // accumulator local to the context: order fixed
		}
		emit(st.Pos(), sprintf(
			"floating-point accumulation into %s inside %s sums in nondeterministic order (FP is non-associative); fold per shard and reduce in fixed order",
			id.Name, context))
		return true
	})
}

// floatFoldContexts calls fn for every nondeterministic-order
// accumulation context under root — map-range bodies, goroutine
// closures and internal/par worker callbacks — mirroring the trigger
// set of the floatfold analyzer for detclose's per-function scan.
func floatFoldContexts(pass *analysis.Pass, root ast.Node, fn func(body ast.Node, boundary ast.Node, context string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass, v) {
				fn(v.Body, v, "map iteration")
			}
		case *ast.GoStmt:
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				fn(lit.Body, lit, "a goroutine")
			}
		case *ast.CallExpr:
			forParCallback(pass, v, func(lit *ast.FuncLit) {
				fn(lit.Body, lit, "a parallel worker callback")
			})
		}
		return true
	})
}
