package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/queries"
	"repro/internal/topology"
)

// accuracyFractions is the x-axis of Figs. 12-13 (resource consumption
// as a fraction of the task count).
var accuracyFractions = []float64{0.2, 0.4, 0.6, 0.8}

// queryBundle abstracts Q1/Q2 for the accuracy experiments.
type queryBundle struct {
	name      string
	topo      *topology.Topology
	sources   map[int]engine.SourceFactory
	operators map[int]engine.OperatorFactory
	// accuracy compares a tentative run's sink records with the
	// failure-free baseline's.
	accuracy func(test, base []engine.SinkRecord) float64
}

// newQ1Bundle builds the Q1 accuracy bundle (top-k overlap at the last
// common batch).
func newQ1Bundle(seed int64) (queryBundle, error) {
	q, err := queries.NewQ1(queries.Q1Params{Seed: seed, K: 100, WindowBatches: 20})
	if err != nil {
		return queryBundle{}, err
	}
	return queryBundle{
		name:      "Q1",
		topo:      q.Topo,
		sources:   q.Sources(),
		operators: q.Operators(),
		accuracy: func(test, base []engine.SinkRecord) float64 {
			baseKeys, bb := queries.LastBatchKeys(base, -1)
			testKeys, _ := queries.LastBatchKeys(test, bb)
			return queries.SetAccuracy(testKeys, baseKeys)
		},
	}, nil
}

// newQ2Bundle builds the Q2 accuracy bundle (incident-set overlap).
// Parallelism is configurable so Fig. 13 can use a smaller variant that
// keeps the optimal DP planner tractable.
func newQ2Bundle(seed int64, locTasks, joinTasks int) (queryBundle, error) {
	q, err := queries.NewQ2(queries.Q2Params{
		Seed:      seed,
		LocTasks:  locTasks,
		IncTasks:  2,
		JoinTasks: joinTasks,
		Users:     20000,
		Segments:  200,
		LocRate:   4000,
	})
	if err != nil {
		return queryBundle{}, err
	}
	return queryBundle{
		name:      "Q2",
		topo:      q.Topo,
		sources:   q.Sources(),
		operators: q.Operators(),
		accuracy: func(test, base []engine.SinkRecord) float64 {
			return queries.SetAccuracy(queries.AllKeys(test), queries.AllKeys(base))
		},
	}, nil
}

// accuracyHorizon is the virtual runtime of each accuracy measurement.
const accuracyHorizon = 60

// runBundle executes the bundle with the given failed tasks permanently
// down (tentative outputs enabled) and returns the sink records.
func (qb queryBundle) run(failed []topology.TaskID) ([]engine.SinkRecord, error) {
	clus := cluster.New(qb.topo.NumTasks(), 4)
	if err := clus.PlaceRoundRobin(qb.topo); err != nil {
		return nil, err
	}
	strategies := make([]engine.Strategy, qb.topo.NumTasks())
	for _, id := range failed {
		strategies[id] = engine.StrategyNone
	}
	e, err := engine.New(engine.Setup{
		Topology: qb.topo,
		Cluster:  clus,
		Config: engine.Config{
			TentativeOutputs:  true,
			HeartbeatInterval: 1,
			ProcRate:          1e7, // accuracy, not latency, is measured
		},
		Sources:    qb.sources,
		Operators:  qb.operators,
		Strategies: strategies,
	})
	if err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		// Fail before the first batch: the whole run is tentative, so
		// the measured quality is the steady-state tentative quality of
		// the plan (the paper's worst-case correlated failure).
		e.ScheduleTaskFailures(failed, 0.1)
	}
	e.Run(accuracyHorizon)
	return e.SinkRecords(), nil
}

// planAccuracy measures the actual tentative accuracy of a plan: run
// with every non-replicated task failed and compare against the
// baseline.
func (qb queryBundle) planAccuracy(p plan.Plan, base []engine.SinkRecord) (float64, error) {
	var failed []topology.TaskID
	for id := 0; id < qb.topo.NumTasks(); id++ {
		if !p.Has(topology.TaskID(id)) {
			failed = append(failed, topology.TaskID(id))
		}
	}
	recs, err := qb.run(failed)
	if err != nil {
		return 0, err
	}
	return qb.accuracy(recs, base), nil
}

// Fig12 reproduces "Comparing the values of OF/IC and the query
// accuracy" for one query: plans optimised for OF (structure-aware) and
// for IC, their predicted metric values and their actual tentative
// accuracies.
func Fig12(qb queryBundle) (Result, error) {
	res := Result{
		Figure: "Fig. 12 (" + qb.name + ")",
		Title:  "OF/IC metric values vs actual tentative-output accuracy: " + qb.name,
		XLabel: "resource consumption",
		YLabel: "OF / IC / accuracy",
	}
	base, err := qb.run(nil)
	if err != nil {
		return Result{}, err
	}
	mgr := core.NewManager(qb.topo)
	var ofS, ofAccS, icS, icAccS Series
	ofS.Name, ofAccS.Name, icS.Name, icAccS.Name = "OF", "OF-SA-Accuracy", "IC", "IC-SA-Accuracy"
	for _, frac := range accuracyFractions {
		x := fmt.Sprintf("%.1f", frac)
		budget := mgr.BudgetForFraction(frac)

		ofPlan, err := mgr.Plan(core.AlgorithmSA, budget)
		if err != nil {
			return Result{}, err
		}
		ofAcc, err := qb.planAccuracy(ofPlan.Plan, base)
		if err != nil {
			return Result{}, err
		}
		ofS.Points = append(ofS.Points, Point{X: x, Y: ofPlan.OF})
		ofAccS.Points = append(ofAccS.Points, Point{X: x, Y: ofAcc})

		icPlan, err := mgr.Plan(core.AlgorithmSAIC, budget)
		if err != nil {
			return Result{}, err
		}
		icAcc, err := qb.planAccuracy(icPlan.Plan, base)
		if err != nil {
			return Result{}, err
		}
		icS.Points = append(icS.Points, Point{X: x, Y: icPlan.IC})
		icAccS.Points = append(icAccS.Points, Point{X: x, Y: icAcc})
	}
	res.Series = []Series{ofS, ofAccS, icS, icAccS}
	return res, nil
}

// Fig12Q1 and Fig12Q2 are the two subfigures of Fig. 12.
func Fig12Q1() (Result, error) {
	qb, err := newQ1Bundle(42)
	if err != nil {
		return Result{}, err
	}
	return Fig12(qb)
}

func Fig12Q2() (Result, error) {
	qb, err := newQ2Bundle(42, 12, 4)
	if err != nil {
		return Result{}, err
	}
	return Fig12(qb)
}

// Fig13 reproduces "Comparing various algorithms": OF and actual
// accuracy of the plans generated by DP, SA and Greedy.
func Fig13(qb queryBundle) (Result, error) {
	res := Result{
		Figure: "Fig. 13 (" + qb.name + ")",
		Title:  "DP vs SA vs Greedy: OF and actual accuracy: " + qb.name,
		XLabel: "resource consumption",
		YLabel: "OF / accuracy",
	}
	base, err := qb.run(nil)
	if err != nil {
		return Result{}, err
	}
	mgr := core.NewManager(qb.topo)
	algs := []core.Algorithm{core.AlgorithmDP, core.AlgorithmSA, core.AlgorithmGreedy}
	ofSeries := make([]Series, len(algs))
	accSeries := make([]Series, len(algs))
	for i, alg := range algs {
		ofSeries[i].Name = alg.String() + "-OF"
		accSeries[i].Name = alg.String() + "-Accuracy"
	}
	for _, frac := range accuracyFractions {
		x := fmt.Sprintf("%.1f", frac)
		budget := mgr.BudgetForFraction(frac)
		for i, alg := range algs {
			r, err := mgr.Plan(alg, budget)
			if err != nil {
				return Result{}, err
			}
			acc, err := qb.planAccuracy(r.Plan, base)
			if err != nil {
				return Result{}, err
			}
			ofSeries[i].Points = append(ofSeries[i].Points, Point{X: x, Y: r.OF})
			accSeries[i].Points = append(accSeries[i].Points, Point{X: x, Y: acc})
		}
	}
	res.Series = append(ofSeries, accSeries...)
	return res, nil
}

// Fig13Q1 and Fig13Q2 are the two subfigures of Fig. 13. Q2 uses a
// smaller parallelisation than Fig. 12 so that the exponential DP
// planner stays tractable (the paper likewise could not complete DP on
// larger topologies, §VI-C).
func Fig13Q1() (Result, error) {
	qb, err := newQ1Bundle(7)
	if err != nil {
		return Result{}, err
	}
	return Fig13(qb)
}

func Fig13Q2() (Result, error) {
	qb, err := newQ2Bundle(7, 4, 2)
	if err != nil {
		return Result{}, err
	}
	return Fig13(qb)
}
