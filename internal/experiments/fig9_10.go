package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Fig9 reproduces "Resource usage of maintaining checkpoints": the ratio
// of checkpointing CPU to normal processing CPU per task, for checkpoint
// intervals 1/5/15/30 s and rates 1000/2000 tps, window 30 s.
func Fig9() (Result, error) {
	res := Result{
		Figure: "Fig. 9",
		Title:  "CPU usage of maintaining checkpoints (window 30s)",
		XLabel: "checkpoint interval",
		YLabel: "ckpt CPU / processing CPU",
	}
	for _, rate := range []int{1000, 2000} {
		s := Series{Name: fmt.Sprintf("%d_tuples/s", rate)}
		for _, interval := range []sim.Time{1, 5, 15, 30} {
			f, err := queries.NewFig6(queries.Fig6Params{RatePerTask: rate, WindowBatches: 30})
			if err != nil {
				return Result{}, err
			}
			e, err := engine.New(f.Setup(engine.Config{
				WindowBatches:      30,
				CheckpointInterval: interval,
			}, nil))
			if err != nil {
				return Result{}, err
			}
			e.Run(120)
			synth := map[topology.TaskID]bool{}
			for _, id := range f.SyntheticTasks {
				synth[id] = true
			}
			var proc, ck float64
			for _, st := range e.CPUStats() {
				if synth[st.Task] {
					proc += float64(st.ProcCPU)
					ck += float64(st.CkptCPU)
				}
			}
			if proc == 0 {
				return Result{}, fmt.Errorf("experiments: no processing CPU recorded")
			}
			s.Points = append(s.Points, Point{X: fmt.Sprintf("%vs", float64(interval)), Y: ck / proc})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// ppaPlans are the replication plans compared in Fig. 10: the fraction
// of the 15 synthetic tasks protected by active replicas.
var ppaPlans = []struct {
	name string
	frac float64
}{
	{"PPA-1.0", 1.0},
	{"PPA-0.5-active", 0.5}, // same runs as PPA-0.5, reporting only active tasks
	{"PPA-0.5", 0.5},
	{"PPA-0", 0},
}

// Fig10 reproduces "Recovery latency of a correlated failure with PPA"
// for one source rate: recovery latency under PPA-1.0 / PPA-0.5 /
// PPA-0, with PPA-0.5-active reporting the completion of just the
// actively replicated half. Window 30 s; checkpoint interval sweeps
// 5/15/30 s (the paper's subfigures (a) and (b) are rate 1000 and 2000).
func Fig10(rate int) (Result, error) {
	res := Result{
		Figure: fmt.Sprintf("Fig. 10 (rate %d tps)", rate),
		Title:  "Recovery latency of correlated failure with PPA plans (window 30s)",
		XLabel: "checkpoint interval",
		YLabel: "latency seconds",
	}
	type cell struct{ all, active float64 }
	// one run per (interval, fraction); PPA-0.5-active shares the
	// PPA-0.5 runs.
	runs := map[string]cell{}
	for _, interval := range []sim.Time{5, 15, 30} {
		for _, frac := range []float64{0, 0.5, 1.0} {
			f, err := queries.NewFig6(queries.Fig6Params{RatePerTask: rate, WindowBatches: 30})
			if err != nil {
				return Result{}, err
			}
			// Every other synthetic task gets an active replica until
			// the fraction is reached.
			var active []topology.TaskID
			want := int(frac*float64(len(f.SyntheticTasks)) + 0.5)
			for i := 0; i < len(f.SyntheticTasks) && len(active) < want; i += 1 {
				if frac == 1.0 || i%2 == 0 {
					active = append(active, f.SyntheticTasks[i])
				}
			}
			for i := 1; i < len(f.SyntheticTasks) && len(active) < want; i += 2 {
				active = append(active, f.SyntheticTasks[i])
			}
			activeSet := map[topology.TaskID]bool{}
			for _, id := range active {
				activeSet[id] = true
			}
			e, err := engine.New(f.Setup(engine.Config{
				WindowBatches:      30,
				CheckpointInterval: interval,
			}, f.Strategies(engine.StrategyCheckpoint, active)))
			if err != nil {
				return Result{}, err
			}
			for _, n := range f.SyntheticNodes {
				e.ScheduleNodeFailure(n, failAt)
			}
			e.Run(runHorizon)
			var worstAll, worstActive float64
			for _, st := range e.RecoveryStats() {
				if !st.Recovered {
					return Result{}, fmt.Errorf("experiments: fig10 task %d not recovered (frac %v, interval %v)", st.Task, frac, interval)
				}
				l := float64(st.Latency())
				if l > worstAll {
					worstAll = l
				}
				if activeSet[st.Task] && l > worstActive {
					worstActive = l
				}
			}
			runs[fmt.Sprintf("%v|%v", interval, frac)] = cell{all: worstAll, active: worstActive}
		}
	}
	for _, p := range ppaPlans {
		s := Series{Name: p.name}
		for _, interval := range []sim.Time{5, 15, 30} {
			c := runs[fmt.Sprintf("%v|%v", interval, p.frac)]
			y := c.all
			if p.name == "PPA-0.5-active" {
				y = c.active
			}
			s.Points = append(s.Points, Point{X: fmt.Sprintf("%vs", float64(interval)), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
