package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cluster"
)

// DomainSweep is the Fig. 7/8-style sweep over failure domains: for
// each placement policy, planner and burst model, an n-scenario
// Monte-Carlo failure campaign runs on the medium random topology (the
// paper's §VI-C baseline spec), and the p95 worst-task recovery latency
// plus the mean relative output loss are reported, alongside the
// answer-quality axis: the mean tentative output fraction and the mean
// corrected fraction of the tentative/correction pipeline. Where
// Figs. 7-8 replay the paper's two fixed injections (one node, all
// nodes), this sweep covers the correlated-failure space in between:
// partial rack bursts, whole-domain outages and cascading multi-domain
// failures. Sweeping placements × planners puts the headline comparison
// on one chart: domain-blind round-robin replica placement vs rack
// anti-affinity, and the worst-case planners vs the correlation-aware
// *-corr variants. A nil placements slice sweeps both policies.
//
// The sweep reads only each campaign's streamed Summary — per-scenario
// results are never retained — so memory stays flat in n and
// million-scenario cells are purely a wall-clock cost.
func DomainSweep(planners []string, placements []cluster.PlacementPolicy, n int, seed int64) (Result, error) {
	if len(placements) == 0 {
		placements = cluster.PlacementPolicies
	}
	res := Result{
		Figure: "Fig. D",
		Title:  fmt.Sprintf("Monte-Carlo failure-domain sweep (%d scenarios/cell)", n),
		XLabel: "burst model",
		YLabel: "p95 latency s / mean loss / mean tentative / mean corrected",
	}
	topo, err := campaign.PresetTopology(campaign.TopoMedium, seed)
	if err != nil {
		return Result{}, err
	}
	// The failure-free baseline depends only on (planner, horizon), not
	// on placement or burst model: one cached baseline simulation per
	// planner serves the whole sweep.
	baselines := campaign.NewBaselineCache()
	for _, planner := range planners {
		// One env per planner: the plan (and the failure-free baseline)
		// is independent of replica placement, so the placement sweep
		// reuses both via SetupFor.
		env, err := campaign.NewEnv(campaign.EnvSpec{Topo: topo, Planner: planner, Tentative: true})
		if err != nil {
			return Result{}, err
		}
		sample, err := env.Cluster()
		if err != nil {
			return Result{}, err
		}
		for _, placement := range placements {
			cell := planner + "/" + placement.String()
			lat := Series{Name: cell + "-p95"}
			loss := Series{Name: cell + "-loss"}
			tent := Series{Name: cell + "-tent"}
			corr := Series{Name: cell + "-corr"}
			for _, model := range campaign.Models {
				scenarios, err := campaign.Generate(sample, campaign.GenSpec{
					Seed:        seed,
					Scenarios:   n,
					Model:       model,
					Correlation: campaign.DefaultCorrelation,
				})
				if err != nil {
					return Result{}, err
				}
				rep, err := campaign.Run(campaign.Config{
					Setup:       env.SetupFor(placement),
					Scenarios:   scenarios,
					Horizon:     150,
					Baselines:   baselines,
					BaselineKey: planner,
				})
				if err != nil {
					return Result{}, fmt.Errorf("experiments: %s/%s campaign: %w", cell, model, err)
				}
				lat.Points = append(lat.Points, Point{X: model.String(), Y: rep.Summary.Latency.P95})
				loss.Points = append(loss.Points, Point{X: model.String(), Y: rep.Summary.Loss.Mean})
				tent.Points = append(tent.Points, Point{X: model.String(), Y: rep.Summary.TentativeFrac.Mean})
				corr.Points = append(corr.Points, Point{X: model.String(), Y: rep.Summary.CorrectedFrac.Mean})
			}
			res.Series = append(res.Series, lat, loss, tent, corr)
		}
	}
	return res, nil
}
