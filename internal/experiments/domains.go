package experiments

import (
	"fmt"

	"repro/internal/campaign"
)

// DomainSweep is the Fig. 7/8-style sweep over failure domains: for
// each planner and each burst model, an n-scenario Monte-Carlo failure
// campaign runs on the medium random topology (the paper's §VI-C
// baseline spec), and the p95 worst-task recovery latency plus the mean
// relative output loss are reported. Where Figs. 7-8 replay the paper's
// two fixed injections (one node, all nodes), this sweep covers the
// correlated-failure space in between: partial rack bursts, whole-domain
// outages and cascading multi-domain failures.
func DomainSweep(planners []string, n int, seed int64) (Result, error) {
	res := Result{
		Figure: "Fig. D",
		Title:  fmt.Sprintf("Monte-Carlo failure-domain sweep (%d scenarios/cell)", n),
		XLabel: "burst model",
		YLabel: "p95 latency s / mean loss",
	}
	topo, err := campaign.PresetTopology(campaign.TopoMedium, seed)
	if err != nil {
		return Result{}, err
	}
	for _, planner := range planners {
		env, err := campaign.NewEnv(campaign.EnvSpec{Topo: topo, Planner: planner})
		if err != nil {
			return Result{}, err
		}
		sample, err := env.Cluster()
		if err != nil {
			return Result{}, err
		}
		lat := Series{Name: planner + "-p95"}
		loss := Series{Name: planner + "-loss"}
		baseline := 0 // shared across burst models (same Setup, same horizon)
		for _, model := range campaign.Models {
			scenarios, err := campaign.Generate(sample, campaign.GenSpec{
				Seed:        seed,
				Scenarios:   n,
				Model:       model,
				Correlation: campaign.DefaultCorrelation,
			})
			if err != nil {
				return Result{}, err
			}
			rep, err := campaign.Run(campaign.Config{
				Setup:     env.Setup,
				Scenarios: scenarios,
				Horizon:   150,
				Baseline:  baseline,
			})
			if err != nil {
				return Result{}, fmt.Errorf("experiments: %s/%s campaign: %w", planner, model, err)
			}
			baseline = rep.BaselineSinkTuples
			lat.Points = append(lat.Points, Point{X: model.String(), Y: rep.Summary.Latency.P95})
			loss.Points = append(loss.Points, Point{X: model.String(), Y: rep.Summary.Loss.Mean})
		}
		res.Series = append(res.Series, lat, loss)
	}
	return res, nil
}
