package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cluster"
)

// DomainSweep is the Fig. 7/8-style sweep over failure domains: for
// each placement policy, planner and burst model, an n-scenario
// Monte-Carlo failure campaign runs on the medium random topology (the
// paper's §VI-C baseline spec), and the p95 worst-task recovery latency
// plus the mean relative output loss are reported, alongside the
// answer-quality axis: the mean tentative output fraction and the mean
// corrected fraction of the tentative/correction pipeline. Where
// Figs. 7-8 replay the paper's two fixed injections (one node, all
// nodes), this sweep covers the correlated-failure space in between:
// partial rack bursts, whole-domain outages and cascading multi-domain
// failures. Sweeping placements × planners puts the headline comparison
// on one chart: domain-blind round-robin replica placement vs rack
// anti-affinity, and the worst-case planners vs the correlation-aware
// *-corr variants. A nil placements slice sweeps both policies.
//
// The sweep reads only each campaign's streamed Summary — per-scenario
// results are never retained — so memory stays flat in n and
// million-scenario cells are purely a wall-clock cost.
func DomainSweep(planners []string, placements []cluster.PlacementPolicy, n int, seed int64) (Result, error) {
	return DomainSweepOpts(planners, placements, n, seed, SweepOptions{})
}

// SweepOptions are DomainSweep's variance-engineering knobs. The zero
// value reproduces the historical sweep exactly.
type SweepOptions struct {
	// CRN generates every cell's scenarios from common-random-number
	// substreams (GenSpec.CRN): all planner × placement cells replay
	// bit-identical failure draws per (model, scenario index). The sweep
	// then appends paired-difference series per non-base cell — Δmean
	// loss and Δp95 latency against the first cell, with 95% CI
	// half-widths — whose variance is far below two independent cells'.
	CRN bool
	// Tilt >= 1 importance-samples rare cascades (GenSpec.Tilt); the
	// reported summaries are reweighted to the nominal correlation.
	Tilt float64
	// StopTol > 0 enables CI-driven early stopping per cell
	// (campaign.Config.StopTol): a cell halts at the first shard-block
	// checkpoint where the p95-loss CI half-width is within StopTol.
	StopTol float64
}

// DomainSweepOpts is DomainSweep with the variance-reduction stack
// switched on per opts: CRN pairing, tilted cascade sampling and
// CI-driven early stopping.
func DomainSweepOpts(planners []string, placements []cluster.PlacementPolicy, n int, seed int64, opts SweepOptions) (Result, error) {
	if len(placements) == 0 {
		placements = cluster.PlacementPolicies
	}
	res := Result{
		Figure: "Fig. D",
		Title:  fmt.Sprintf("Monte-Carlo failure-domain sweep (%d scenarios/cell)", n),
		XLabel: "burst model",
		YLabel: "p95 latency s / mean loss / mean tentative / mean corrected",
	}
	topo, err := campaign.PresetTopology(campaign.TopoMedium, seed)
	if err != nil {
		return Result{}, err
	}
	// The failure-free baseline depends only on (planner, horizon), not
	// on placement or burst model: one cached baseline simulation per
	// planner serves the whole sweep.
	baselines := campaign.NewBaselineCache()
	// With CRN, the first cell of the sweep becomes the head-to-head
	// base: its per-scenario losses and latencies are retained (O(n) per
	// model — a reporting cost, not a campaign cost) and every other
	// cell reports paired-difference series against it.
	type baseMetrics struct {
		loss, lat []float64
		seen      []bool
	}
	var crnBase map[campaign.Model]*baseMetrics
	if opts.CRN {
		crnBase = make(map[campaign.Model]*baseMetrics)
	}
	firstCell := true
	for _, planner := range planners {
		// One env per planner: the plan (and the failure-free baseline)
		// is independent of replica placement, so the placement sweep
		// reuses both via SetupFor.
		env, err := campaign.NewEnv(campaign.EnvSpec{Topo: topo, Planner: planner, Tentative: true})
		if err != nil {
			return Result{}, err
		}
		sample, err := env.Cluster()
		if err != nil {
			return Result{}, err
		}
		for _, placement := range placements {
			cell := planner + "/" + placement.String()
			lat := Series{Name: cell + "-p95"}
			loss := Series{Name: cell + "-loss"}
			tent := Series{Name: cell + "-tent"}
			corr := Series{Name: cell + "-corr"}
			dloss := Series{Name: cell + "-dp95loss"}
			dlossCI := Series{Name: cell + "-dp95loss-ci"}
			dlat := Series{Name: cell + "-dlat"}
			dlatCI := Series{Name: cell + "-dlat-ci"}
			for _, model := range campaign.Models {
				scenarios, err := campaign.Generate(sample, campaign.GenSpec{
					Seed:        seed,
					Scenarios:   n,
					Model:       model,
					Correlation: campaign.DefaultCorrelation,
					CRN:         opts.CRN,
					Tilt:        opts.Tilt,
				})
				if err != nil {
					return Result{}, err
				}
				cfg := campaign.Config{
					Setup:       env.SetupFor(placement),
					Scenarios:   scenarios,
					Horizon:     150,
					Baselines:   baselines,
					BaselineKey: planner,
					StopTol:     opts.StopTol,
				}
				var pairLoss, pairLat *campaign.Paired
				if opts.CRN {
					if firstCell {
						bm := &baseMetrics{
							loss: make([]float64, n),
							lat:  make([]float64, n),
							seen: make([]bool, n),
						}
						crnBase[model] = bm
						cfg.OnResult = func(r campaign.ScenarioResult) {
							i := r.Scenario.Index
							bm.loss[i], bm.lat[i], bm.seen[i] = r.OutputLoss, float64(r.WorstLatency), true
						}
					} else {
						bm := crnBase[model]
						pairLoss, pairLat = campaign.NewPaired(n), campaign.NewPaired(n)
						for i, ok := range bm.seen {
							if ok {
								pairLoss.ObserveBase(i, bm.loss[i])
								pairLat.ObserveBase(i, bm.lat[i])
							}
						}
						cfg.OnResult = func(r campaign.ScenarioResult) {
							i := r.Scenario.Index
							pairLoss.ObserveOther(i, r.OutputLoss)
							pairLat.ObserveOther(i, float64(r.WorstLatency))
						}
					}
				}
				rep, err := campaign.Run(cfg)
				if err != nil {
					return Result{}, fmt.Errorf("experiments: %s/%s campaign: %w", cell, model, err)
				}
				lat.Points = append(lat.Points, Point{X: model.String(), Y: rep.Summary.Latency.P95})
				loss.Points = append(loss.Points, Point{X: model.String(), Y: rep.Summary.Loss.Mean})
				tent.Points = append(tent.Points, Point{X: model.String(), Y: rep.Summary.TentativeFrac.Mean})
				corr.Points = append(corr.Points, Point{X: model.String(), Y: rep.Summary.CorrectedFrac.Mean})
				if pairLoss != nil {
					ps, pl := pairLoss.Summary(), pairLat.Summary()
					dloss.Points = append(dloss.Points, Point{X: model.String(), Y: ps.DeltaP95})
					dlossCI.Points = append(dlossCI.Points, Point{X: model.String(), Y: ps.DeltaP95CI})
					dlat.Points = append(dlat.Points, Point{X: model.String(), Y: pl.MeanDelta})
					dlatCI.Points = append(dlatCI.Points, Point{X: model.String(), Y: pl.MeanCI})
				}
			}
			res.Series = append(res.Series, lat, loss, tent, corr)
			if len(dloss.Points) > 0 {
				res.Series = append(res.Series, dloss, dlossCI, dlat, dlatCI)
			}
			firstCell = false
		}
	}
	return res, nil
}
