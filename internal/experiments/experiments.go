// Package experiments regenerates every figure of the evaluation
// section (§VI) of Su & Zhou (ICDE 2016). Each driver returns a Result
// whose series mirror the lines/bars of the corresponding figure; the
// cmd/ppabench tool prints them and bench_test.go wraps them as Go
// benchmarks. See DESIGN.md for the experiment index.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one measurement: an x-axis label and a value.
type Point struct {
	X string
	Y float64
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is the reproduction of one figure.
type Result struct {
	Figure string // e.g. "Fig. 7"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the result as an aligned text table (rows = x values,
// columns = series).
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Figure, r.Title)
	// column order = series order; row order = first appearance
	var xs []string
	seen := map[string]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	w := len(r.XLabel)
	for _, x := range xs {
		if len(x) > w {
			w = len(x)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	fmt.Fprintf(&b, "    (%s)\n", r.YLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-*s", w+2, x)
		for _, s := range r.Series {
			if v, ok := lookup(s, x); ok {
				fmt.Fprintf(&b, "%16.3f", v)
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s Series, x string) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// seriesByName returns a stable ordering helper used by tests.
func seriesByName(rs []Series) map[string]Series {
	out := make(map[string]Series, len(rs))
	for _, s := range rs {
		out[s.Name] = s
	}
	return out
}

// mean computes the average of a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
