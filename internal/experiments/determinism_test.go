package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestFig7AggregationByteStable pins the figure-emission aggregation
// against Go's randomised map iteration order. sim.Time is a float64,
// and float64 addition is not associative, so folding a latency map in
// iteration order makes the emitted mean (hence the CSV/JSON points)
// vary bitwise between runs. sortedLatencies must make the fold
// byte-identical on every evaluation and match the pinned bit pattern.
func TestFig7AggregationByteStable(t *testing.T) {
	// Values chosen so that different summation orders produce
	// different float64 results: a large term swamps the small ones.
	stats := map[topology.TaskID]sim.Time{
		0: 1e16, 1: 1, 2: 1, 3: 1, 4: -1e16,
		5: 0.1, 6: 0.2, 7: 0.3, 8: 1e-3, 9: 7,
	}
	want := math.Float64bits(mean(sortedLatencies(stats)))
	for i := 0; i < 200; i++ {
		got := math.Float64bits(mean(sortedLatencies(stats)))
		if got != want {
			t.Fatalf("iteration %d: mean bits %016x, want %016x — figure emission is order-dependent", i, got, want)
		}
	}

	// Pin the exact bits so a later change to the aggregation cannot
	// silently reintroduce order dependence via a refactor.
	// In ID order the three +1 terms are absorbed by 1e16 (ulp there
	// is 2) and cancel exactly against -1e16, leaving mean = 0.7601.
	const pinned = 0x3fe852bd3c361134
	if got := math.Float64bits(mean(sortedLatencies(stats))); got != pinned {
		t.Fatalf("pinned aggregation changed: got %016x want %016x", got, pinned)
	}
}
