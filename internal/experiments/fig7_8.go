package experiments

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/topology"
)

// sortedLatencies flattens a per-task latency map in task-ID order.
// The latencies feed a floating-point mean; iterating the map directly
// would make the sum — and the emitted figure — depend on Go's
// randomised map iteration order.
func sortedLatencies(stats map[topology.TaskID]sim.Time) []float64 {
	ids := make([]topology.TaskID, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]float64, 0, len(ids))
	for _, id := range ids {
		out = append(out, float64(stats[id]))
	}
	return out
}

// technique is one fault-tolerance configuration compared in Figs. 7-8.
type technique struct {
	name     string
	strategy engine.Strategy
	ckpt     sim.Time // checkpoint interval (checkpoint technique)
	trim     sim.Time // replica trim interval (active technique)
}

// figTechniques are the six bars of Figs. 7 and 8.
var figTechniques = []technique{
	{name: "Active-5s", strategy: engine.StrategyActive, trim: 5},
	{name: "Active-30s", strategy: engine.StrategyActive, trim: 30},
	{name: "Checkpoint-5s", strategy: engine.StrategyCheckpoint, ckpt: 5},
	{name: "Checkpoint-15s", strategy: engine.StrategyCheckpoint, ckpt: 15},
	{name: "Checkpoint-30s", strategy: engine.StrategyCheckpoint, ckpt: 30},
	{name: "Storm", strategy: engine.StrategySourceReplay},
}

// recoveryConfig is one x-axis group of Figs. 7-8.
type recoveryConfig struct {
	windowBatches int
	rate          int
}

func (c recoveryConfig) label() string {
	return fmt.Sprintf("win:%ds rate:%dtps", c.windowBatches, c.rate)
}

var figConfigs = []recoveryConfig{
	{10, 1000}, {10, 2000}, {30, 1000}, {30, 2000},
}

// failureMode selects single-node vs correlated failure injection.
type failureMode int

const (
	singleNode failureMode = iota
	correlated
)

const (
	failAt     = sim.Time(45.2)
	runHorizon = sim.Time(300)
)

// runRecovery executes one (technique, config, failure) cell and returns
// the recovery latencies of the failed tasks, keyed by task.
func runRecovery(tech technique, cfg recoveryConfig, mode failureMode, failNodeIdx int) (map[topology.TaskID]sim.Time, error) {
	f, err := queries.NewFig6(queries.Fig6Params{
		RatePerTask:   cfg.rate,
		WindowBatches: cfg.windowBatches,
	})
	if err != nil {
		return nil, err
	}
	econf := engine.Config{
		WindowBatches:       cfg.windowBatches,
		CheckpointInterval:  tech.ckpt,
		ReplicaTrimInterval: tech.trim,
	}
	strategies := f.Strategies(tech.strategy, nil)
	if tech.strategy == engine.StrategyActive {
		// PPA: the passive layer covers every task; active replication
		// protects the synthetic tasks under test.
		strategies = f.Strategies(engine.StrategyCheckpoint, f.SyntheticTasks)
		if econf.CheckpointInterval == 0 {
			econf.CheckpointInterval = 15
		}
	}
	e, err := engine.New(f.Setup(econf, strategies))
	if err != nil {
		return nil, err
	}
	switch mode {
	case singleNode:
		e.ScheduleNodeFailure(f.SyntheticNodes[failNodeIdx], failAt)
	case correlated:
		for _, n := range f.SyntheticNodes {
			e.ScheduleNodeFailure(n, failAt)
		}
	}
	e.Run(runHorizon)
	out := make(map[topology.TaskID]sim.Time)
	for _, st := range e.RecoveryStats() {
		if !st.Recovered {
			return nil, fmt.Errorf("experiments: task %d (%s) not recovered by %v", st.Task, tech.name, runHorizon)
		}
		out[st.Task] = st.Latency()
	}
	return out, nil
}

// Fig7 reproduces "Recovery latency of single node failure": each
// technique's latency averaged over failures of one node per operator
// level (O1[0], O2[0], O3[0], O4), for the four window/rate
// configurations.
func Fig7() (Result, error) {
	res := Result{
		Figure: "Fig. 7",
		Title:  "Recovery latency of single node failure",
		XLabel: "configuration",
		YLabel: "latency seconds",
	}
	// One representative node per operator level: the synthetic nodes
	// list is ordered O1 x8, O2 x4, O3 x2, O4 x1.
	levels := []int{0, 8, 12, 14}
	for _, tech := range figTechniques {
		s := Series{Name: tech.name}
		for _, cfg := range figConfigs {
			var ls []float64
			for _, idx := range levels {
				stats, err := runRecovery(tech, cfg, singleNode, idx)
				if err != nil {
					return Result{}, err
				}
				ls = append(ls, sortedLatencies(stats)...)
			}
			s.Points = append(s.Points, Point{X: cfg.label(), Y: mean(ls)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig8 reproduces "Recovery latency of correlated failure": all 15
// synthetic nodes fail simultaneously; latency is the completion of the
// whole recovery (maximum over the failed tasks).
func Fig8() (Result, error) {
	res := Result{
		Figure: "Fig. 8",
		Title:  "Recovery latency of correlated failure",
		XLabel: "configuration",
		YLabel: "latency seconds",
	}
	for _, tech := range figTechniques {
		s := Series{Name: tech.name}
		for _, cfg := range figConfigs {
			stats, err := runRecovery(tech, cfg, correlated, 0)
			if err != nil {
				return Result{}, err
			}
			var worst float64
			for _, l := range stats {
				if float64(l) > worst {
					worst = float64(l)
				}
			}
			s.Points = append(s.Points, Point{X: cfg.label(), Y: worst})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
