package experiments

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/randtopo"
	"repro/internal/topology"
)

// fig14Fractions is the replication-ratio sweep of Fig. 14.
var fig14Fractions = []float64{0.1, 0.2, 0.4, 0.6, 0.8}

// meanOF runs the named registered planner over n random topologies
// drawn from the spec and returns the mean worst-case OF per fraction.
// Topologies a planner cannot handle (e.g. a unit decomposition past
// the segment cap) are skipped (counted against n), mirroring the
// paper's exclusion of intractable cases.
func meanOF(spec randtopo.Spec, n int, planner string) ([]Point, error) {
	pl, ok := plan.Lookup(planner)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown planner %q (registered: %v)", planner, plan.Names())
	}
	sums := make([]float64, len(fig14Fractions))
	counts := make([]int, len(fig14Fractions))
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)*101
		topo, err := randtopo.Generate(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: generating topology %d: %w", i, err)
		}
		ctx := plan.NewContext(topo)
		for fi, frac := range fig14Fractions {
			budget := int(frac * float64(topo.NumTasks()))
			p, err := pl.Plan(ctx, budget)
			if err != nil {
				continue // intractable for this planner: skip
			}
			sums[fi] += ctx.OF(p)
			counts[fi]++
		}
	}
	points := make([]Point, len(fig14Fractions))
	for fi, frac := range fig14Fractions {
		y := 0.0
		if counts[fi] > 0 {
			y = sums[fi] / float64(counts[fi])
		}
		points[fi] = Point{X: fmt.Sprintf("%.1f", frac), Y: y}
	}
	return points, nil
}

// fig14 builds one Fig. 14 subfigure: SA and Greedy on two spec
// variants.
func fig14(figure, title string, variants []struct {
	label string
	spec  randtopo.Spec
}, n int) (Result, error) {
	res := Result{
		Figure: figure,
		Title:  title,
		XLabel: "resource consumption",
		YLabel: "output fidelity",
	}
	for _, alg := range []struct {
		name    string
		planner string
	}{{"SA", "sa"}, {"Greedy", "greedy"}} {
		for _, v := range variants {
			pts, err := meanOF(v.spec, n, alg.planner)
			if err != nil {
				return Result{}, err
			}
			res.Series = append(res.Series, Series{Name: alg.name + "-" + v.label, Points: pts})
		}
	}
	return res, nil
}

// Fig14a compares uniform vs Zipfian (s=0.1) task workloads (§VI-C).
func Fig14a(n int) (Result, error) {
	zipf := randtopo.DefaultSpec(1000)
	zipf.Skew = 0.1
	uniform := randtopo.DefaultSpec(1000)
	return fig14("Fig. 14a", "SA vs Greedy: workload skewness",
		[]struct {
			label string
			spec  randtopo.Spec
		}{{"zipf", zipf}, {"uniform", uniform}}, n)
}

// Fig14b compares parallelisation degree ranges 1-10 vs 10-20.
func Fig14b(n int) (Result, error) {
	low := randtopo.DefaultSpec(2000)
	low.MinPar, low.MaxPar = 1, 10
	high := randtopo.DefaultSpec(2000)
	high.MinPar, high.MaxPar = 10, 20
	return fig14("Fig. 14b", "SA vs Greedy: degree of parallelization",
		[]struct {
			label string
			spec  randtopo.Spec
		}{{"para:10~20", high}, {"para:1~10", low}}, n)
}

// Fig14c compares structured vs full topologies.
func Fig14c(n int) (Result, error) {
	structured := randtopo.DefaultSpec(3000)
	full := randtopo.DefaultSpec(3000)
	full.Full = true
	return fig14("Fig. 14c", "SA vs Greedy: full partitioning",
		[]struct {
			label string
			spec  randtopo.Spec
		}{{"Structure", structured}, {"Full", full}}, n)
}

// Fig14d compares join-operator fractions 0 vs 50%. Per the paper's
// observation ("for the same topology, OF decreases with more operators
// set as joins"), the comparison is controlled: each random topology is
// drawn once with 50% joins and then evaluated a second time with the
// joins downgraded to independent-input operators.
func Fig14d(n int) (Result, error) {
	res := Result{
		Figure: "Fig. 14d",
		Title:  "SA vs Greedy: fraction of join operators",
		XLabel: "resource consumption",
		YLabel: "output fidelity",
	}
	spec := randtopo.DefaultSpec(4000)
	spec.JoinFraction = 0.5
	type acc struct {
		sums   []float64
		counts []int
	}
	accs := map[string]*acc{}
	for _, name := range []string{"SA-NoJoin", "SA-Join-50%", "Greedy-NoJoin", "Greedy-Join-50%"} {
		accs[name] = &acc{sums: make([]float64, len(fig14Fractions)), counts: make([]int, len(fig14Fractions))}
	}
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)*101
		joinTopo, err := randtopo.Generate(s)
		if err != nil {
			return Result{}, err
		}
		noJoinTopo, err := randtopo.WithoutJoins(joinTopo)
		if err != nil {
			return Result{}, err
		}
		for variant, topo := range map[string]*topologyHolder{
			"Join-50%": {joinTopo},
			"NoJoin":   {noJoinTopo},
		} {
			ctx := plan.NewContext(topo.t)
			for fi, frac := range fig14Fractions {
				budget := int(frac * float64(topo.t.NumTasks()))
				sa, err := plan.MustLookup("sa").Plan(ctx, budget)
				if err == nil {
					a := accs["SA-"+variant]
					a.sums[fi] += ctx.OF(sa)
					a.counts[fi]++
				}
				g, _ := plan.MustLookup("greedy").Plan(ctx, budget)
				a := accs["Greedy-"+variant]
				a.sums[fi] += ctx.OF(g)
				a.counts[fi]++
			}
		}
	}
	for _, name := range []string{"SA-NoJoin", "SA-Join-50%", "Greedy-NoJoin", "Greedy-Join-50%"} {
		a := accs[name]
		s := Series{Name: name}
		for fi, frac := range fig14Fractions {
			y := 0.0
			if a.counts[fi] > 0 {
				y = a.sums[fi] / float64(a.counts[fi])
			}
			s.Points = append(s.Points, Point{X: fmt.Sprintf("%.1f", frac), Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

type topologyHolder struct{ t *topology.Topology }
