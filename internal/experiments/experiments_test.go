package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
)

func point(t *testing.T, r Result, series, x string) float64 {
	t.Helper()
	s, ok := seriesByName(r.Series)[series]
	if !ok {
		t.Fatalf("series %q missing in %s (have %v)", series, r.Figure, names(r))
	}
	v, ok := lookup(s, x)
	if !ok {
		t.Fatalf("point %q missing in series %q of %s", x, series, r.Figure)
	}
	return v
}

func names(r Result) []string {
	var out []string
	for _, s := range r.Series {
		out = append(out, s.Name)
	}
	return out
}

// TestRunRecoveryCell exercises one cell of Fig. 7 per technique and
// checks the paper's qualitative ordering: active < checkpoint, and
// checkpoint latency grows with the interval.
func TestRunRecoveryCell(t *testing.T) {
	cfg := recoveryConfig{windowBatches: 10, rate: 1000}
	lat := func(tech technique) float64 {
		stats, err := runRecovery(tech, cfg, singleNode, 8) // an O2 node
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) != 1 {
			t.Fatalf("%s: %d stats", tech.name, len(stats))
		}
		for _, l := range stats {
			return float64(l)
		}
		return 0
	}
	active := lat(figTechniques[0]) // Active-5s
	ckpt5 := lat(figTechniques[2])  // Checkpoint-5s
	ckpt30 := lat(figTechniques[4]) // Checkpoint-30s
	storm := lat(figTechniques[5])  // Storm
	if !(active < ckpt5 && ckpt5 < ckpt30) {
		t.Errorf("ordering violated: active=%v ckpt5=%v ckpt30=%v", active, ckpt5, ckpt30)
	}
	if storm <= active {
		t.Errorf("storm=%v should exceed active=%v", storm, active)
	}
}

// TestRunRecoveryCorrelated checks that a full correlated failure
// recovers under both active and checkpoint techniques and that active
// stays far ahead.
func TestRunRecoveryCorrelated(t *testing.T) {
	cfg := recoveryConfig{windowBatches: 10, rate: 1000}
	statsA, err := runRecovery(figTechniques[0], cfg, correlated, 0)
	if err != nil {
		t.Fatal(err)
	}
	statsC, err := runRecovery(figTechniques[3], cfg, correlated, 0) // Checkpoint-15s
	if err != nil {
		t.Fatal(err)
	}
	if len(statsA) != 15 || len(statsC) != 15 {
		t.Fatalf("stats = %d / %d, want 15 tasks each", len(statsA), len(statsC))
	}
	var worstA, worstC float64
	for _, l := range statsA {
		if float64(l) > worstA {
			worstA = float64(l)
		}
	}
	for _, l := range statsC {
		if float64(l) > worstC {
			worstC = float64(l)
		}
	}
	if worstA >= worstC {
		t.Errorf("correlated: active %v should beat checkpoint %v", worstA, worstC)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []string{"1000_tuples/s", "2000_tuples/s"} {
		r1 := point(t, r, rate, "1s")
		r30 := point(t, r, rate, "30s")
		if r1 <= r30 {
			t.Errorf("%s: ratio at 1s (%v) should exceed 30s (%v)", rate, r1, r30)
		}
		if r1 <= 0 {
			t.Errorf("%s: zero checkpoint cost", rate)
		}
	}
	// higher rate -> more state -> higher ratio at the same interval
	if point(t, r, "2000_tuples/s", "1s") <= point(t, r, "1000_tuples/s", "1s")/2 {
		t.Error("rate dependence of checkpoint cost looks wrong")
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []string{"5s", "15s", "30s"} {
		full := point(t, r, "PPA-1.0", x)
		halfActive := point(t, r, "PPA-0.5-active", x)
		half := point(t, r, "PPA-0.5", x)
		none := point(t, r, "PPA-0", x)
		// Paper: PPA-0.5-active <= PPA-1.0 << PPA-0.5 <= PPA-0.
		if halfActive > full+0.5 {
			t.Errorf("%s: PPA-0.5-active %v should be <= PPA-1.0 %v", x, halfActive, full)
		}
		if full >= half {
			t.Errorf("%s: PPA-1.0 %v should beat PPA-0.5 %v", x, full, half)
		}
		if half > none+0.5 {
			t.Errorf("%s: PPA-0.5 %v should be <= PPA-0 %v", x, half, none)
		}
	}
}

func TestFig12Q2Shape(t *testing.T) {
	r, err := Fig12Q2()
	if err != nil {
		t.Fatal(err)
	}
	// The defining result: for the join query the IC metric overestimates
	// quality — IC value far above the actual accuracy of the IC plan —
	// while OF tracks its plan's accuracy.
	icGap, ofGap := 0.0, 0.0
	for _, x := range []string{"0.4", "0.6"} {
		icGap += point(t, r, "IC", x) - point(t, r, "IC-SA-Accuracy", x)
		ofGap += abs(point(t, r, "OF", x) - point(t, r, "OF-SA-Accuracy", x))
	}
	if icGap <= ofGap {
		t.Errorf("IC gap (%v) should exceed OF gap (%v) for the join query", icGap, ofGap)
	}
}

func TestFig13Q1Shape(t *testing.T) {
	r, err := Fig13Q1()
	if err != nil {
		t.Fatal(err)
	}
	// DP is optimal; SA close; Greedy worst at low fractions.
	for _, x := range []string{"0.2", "0.4"} {
		dp := point(t, r, "DP-OF", x)
		sa := point(t, r, "SA-OF", x)
		g := point(t, r, "Greedy-OF", x)
		if sa > dp+1e-9 || g > dp+1e-9 {
			t.Errorf("%s: DP %v beaten by SA %v or Greedy %v", x, dp, sa, g)
		}
		if g > sa+1e-9 {
			t.Errorf("%s: Greedy %v should not beat SA %v", x, g, sa)
		}
	}
	if dp := point(t, r, "DP-OF", "0.2"); dp <= 0 {
		t.Errorf("DP OF at 0.2 = %v, want > 0", dp)
	}
}

func TestFig14aShape(t *testing.T) {
	r, err := Fig14a(6)
	if err != nil {
		t.Fatal(err)
	}
	// SA must dominate greedy, most visibly at small ratios.
	saZ := point(t, r, "SA-zipf", "0.2")
	gZ := point(t, r, "Greedy-zipf", "0.2")
	if saZ < gZ {
		t.Errorf("SA-zipf %v below Greedy-zipf %v at 0.2", saZ, gZ)
	}
	saBig := point(t, r, "SA-zipf", "0.8")
	if saBig <= saZ {
		t.Errorf("SA OF should grow with budget: %v at 0.2 vs %v at 0.8", saZ, saBig)
	}
}

func TestFig14dShape(t *testing.T) {
	r, err := Fig14d(6)
	if err != nil {
		t.Fatal(err)
	}
	// Joins reduce achievable OF at the same budget (§VI-C).
	noJoin := point(t, r, "SA-NoJoin", "0.4")
	join := point(t, r, "SA-Join-50%", "0.4")
	if join > noJoin {
		t.Errorf("join topologies OF %v should not exceed no-join %v", join, noJoin)
	}
}

func TestResultString(t *testing.T) {
	r := Result{
		Figure: "Fig. X", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: "1", Y: 0.5}}},
			{Name: "b", Points: []Point{{X: "2", Y: 1.5}}},
		},
	}
	s := r.String()
	for _, want := range []string{"Fig. X", "demo", "a", "b", "0.500", "1.500", "-"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTechniqueListMatchesPaper(t *testing.T) {
	want := []string{"Active-5s", "Active-30s", "Checkpoint-5s", "Checkpoint-15s", "Checkpoint-30s", "Storm"}
	if len(figTechniques) != len(want) {
		t.Fatalf("%d techniques", len(figTechniques))
	}
	for i, tech := range figTechniques {
		if tech.name != want[i] {
			t.Errorf("technique %d = %s, want %s", i, tech.name, want[i])
		}
	}
	if len(figConfigs) != 4 {
		t.Errorf("%d configs, want 4", len(figConfigs))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var _ = engine.StrategyActive // keep the import for the technique table

// TestDomainSweepShape runs a small Monte-Carlo domain sweep and checks
// its structure: latency, loss, tentative-fraction and
// corrected-fraction series per placement × planner cell, one point per
// burst model, and the paper's qualitative expectation that bigger
// blast radii do not recover faster than single-node failures.
func TestDomainSweepShape(t *testing.T) {
	r, err := DomainSweep([]string{"sa", "greedy"}, []cluster.PlacementPolicy{cluster.PlacementAntiAffinity}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 8 {
		t.Fatalf("%d series, want 8 (%v)", len(r.Series), names(r))
	}
	for _, s := range r.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %q has %d points, want one per burst model", s.Name, len(s.Points))
		}
	}
	for _, planner := range []string{"sa", "greedy"} {
		cell := planner + "/anti-affinity"
		single := point(t, r, cell+"-p95", "single")
		domain := point(t, r, cell+"-p95", "domain")
		if single <= 0 || domain <= 0 {
			t.Errorf("%s: non-positive p95 latencies (single=%v domain=%v)", planner, single, domain)
		}
		if domain < single*0.5 {
			t.Errorf("%s: whole-domain p95 (%v) implausibly below single-node p95 (%v)", planner, domain, single)
		}
	}
}

// TestDomainSweepOptsPaired: with CRN on, every non-base cell carries
// paired-difference series (Δp95 loss, Δmean latency, each with a CI
// half-width) against the sweep's first cell, and the paired CI on the
// self-comparison collapses to zero because both cells replay
// identical draws through an identical configuration.
func TestDomainSweepOptsPaired(t *testing.T) {
	r, err := DomainSweepOpts([]string{"greedy"}, cluster.PlacementPolicies, 6, 1,
		SweepOptions{CRN: true, Tilt: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two cells: base gets 4 series, the other 4 + 4 paired-delta.
	if len(r.Series) != 12 {
		t.Fatalf("%d series, want 12 (%v)", len(r.Series), names(r))
	}
	cell := "greedy/" + cluster.PlacementRoundRobin.String()
	for _, suffix := range []string{"-dp95loss", "-dp95loss-ci", "-dlat", "-dlat-ci"} {
		found := false
		for _, s := range r.Series {
			if s.Name == cell+suffix {
				found = true
				if len(s.Points) != 4 {
					t.Fatalf("series %q has %d points, want one per burst model", s.Name, len(s.Points))
				}
			}
		}
		if !found {
			t.Fatalf("missing paired series %q (%v)", cell+suffix, names(r))
		}
	}
}
