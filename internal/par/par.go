// Package par provides the repo's deterministic worker pool: an atomic
// cursor over a fixed index space. Each index is computed independently
// and lands at its own slot, so callers that merge results in index
// order observe output identical to a sequential loop — the planners
// and the failure-campaign runner both rely on this for bit-identical
// results at any worker count.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map computes fn(i) for every i in [0, n) on up to workers goroutines
// and returns the results in index order. workers <= 0 selects
// GOMAXPROCS; workers == 1 runs inline.
func Map[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	Each(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// EachErr runs fn(i) for every i in [0, n) on up to workers goroutines
// and fails fast: after any fn returns a non-nil error, no further
// index is claimed; indices already claimed still run to completion.
// Because the cursor claims indices in ascending order, every index
// below the first failing one has executed, so the returned error is
// deterministically the one with the smallest index regardless of the
// worker count. workers <= 0 selects GOMAXPROCS; workers == 1 runs
// inline (and stops at the first error).
func EachErr(n, workers int, fn func(int) error) error {
	return EachErrCtx(context.Background(), n, workers, fn)
}

// EachErrCtx is EachErr with cancellation: once ctx is done, no further
// index is claimed (indices already claimed still run to completion)
// and ctx.Err() is returned unless some fn failed first — an fn error
// always wins over the cancellation error, preserving EachErr's
// smallest-failing-index determinism.
func EachErrCtx(ctx context.Context, n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstIdx int
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Each runs fn(i) for every i in [0, n) on up to workers goroutines.
// workers <= 0 selects GOMAXPROCS; workers == 1 runs inline.
func Each(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
