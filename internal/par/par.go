// Package par provides the repo's deterministic worker pool: an atomic
// cursor over a fixed index space. Each index is computed independently
// and lands at its own slot, so callers that merge results in index
// order observe output identical to a sequential loop — the planners
// and the failure-campaign runner both rely on this for bit-identical
// results at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map computes fn(i) for every i in [0, n) on up to workers goroutines
// and returns the results in index order. workers <= 0 selects
// GOMAXPROCS; workers == 1 runs inline.
func Map[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	Each(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Each runs fn(i) for every i in [0, n) on up to workers goroutines.
// workers <= 0 selects GOMAXPROCS; workers == 1 runs inline.
func Each(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
