package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		var hits [257]atomic.Int32
		Each(len(hits), workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

// TestEachErrSmallestIndex: the returned error is deterministically the
// one with the smallest index, at any worker count, even when a larger
// failing index is reached first.
func TestEachErrSmallestIndex(t *testing.T) {
	failing := map[int]bool{3: true, 7: true, 900: true}
	for _, workers := range []int{1, 2, 8, 0} {
		err := EachErr(1000, workers, func(i int) error {
			if failing[i] {
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

// TestEachErrFailFast: after the first error, workers stop claiming
// new indices — a long run aborts promptly instead of draining the
// whole index space.
func TestEachErrFailFast(t *testing.T) {
	const n = 100_000
	var executed atomic.Int64
	boom := errors.New("boom")
	err := EachErr(n, 8, func(i int) error {
		executed.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Indices claimed before the stop flag flips are bounded by the
	// failing prefix plus in-flight workers (with generous slack).
	if got := executed.Load(); got > 1000 {
		t.Fatalf("%d of %d indices executed after an index-5 error", got, n)
	}
}

// TestEachErrCtxCancel: cancellation stops further claims and surfaces
// ctx.Err(), but an fn error observed before the cancellation wins.
func TestEachErrCtxCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed atomic.Int64
		err := EachErrCtx(ctx, 100_000, workers, func(i int) error {
			if executed.Add(1) == 50 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := executed.Load(); got > 1000 {
			t.Fatalf("workers=%d: %d indices executed after cancellation", workers, got)
		}
	}

	// Pre-cancelled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	if err := EachErrCtx(ctx, 10, 4, func(int) error { executed.Add(1); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if executed.Load() != 0 {
		t.Fatalf("%d indices executed with a pre-cancelled context", executed.Load())
	}

	// fn error beats the cancellation error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := EachErrCtx(ctx2, 1000, 4, func(i int) error {
		if i == 3 {
			cancel2()
			return boom
		}
		return nil
	})
	cancel2()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestEachErrNilError(t *testing.T) {
	var count atomic.Int64
	if err := EachErr(500, 4, func(int) error { count.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 500 {
		t.Fatalf("executed %d of 500", count.Load())
	}
}
