package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		var hits [257]atomic.Int32
		Each(len(hits), workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

// TestEachErrSmallestIndex: the returned error is deterministically the
// one with the smallest index, at any worker count, even when a larger
// failing index is reached first.
func TestEachErrSmallestIndex(t *testing.T) {
	failing := map[int]bool{3: true, 7: true, 900: true}
	for _, workers := range []int{1, 2, 8, 0} {
		err := EachErr(1000, workers, func(i int) error {
			if failing[i] {
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

// TestEachErrFailFast: after the first error, workers stop claiming
// new indices — a long run aborts promptly instead of draining the
// whole index space.
func TestEachErrFailFast(t *testing.T) {
	const n = 100_000
	var executed atomic.Int64
	boom := errors.New("boom")
	err := EachErr(n, 8, func(i int) error {
		executed.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Indices claimed before the stop flag flips are bounded by the
	// failing prefix plus in-flight workers (with generous slack).
	if got := executed.Load(); got > 1000 {
		t.Fatalf("%d of %d indices executed after an index-5 error", got, n)
	}
}

func TestEachErrNilError(t *testing.T) {
	var count atomic.Int64
	if err := EachErr(500, 4, func(int) error { count.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 500 {
		t.Fatalf("executed %d of 500", count.Load())
	}
}
