package fidelity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// fig2 builds the paper's Fig. 2 example calibrated so that the worked
// IL numbers hold: O1 contributes an input stream of rate 3, O2 one of
// rate 5 with task rates 3 and 2.
func fig2(kind topology.InputKind) (*topology.Topology, error) {
	b := topology.NewBuilder()
	o1 := b.AddSource("O1", 2, 1.5) // total 3
	o2 := b.AddSource("O2", 2, 2.5) // total 5, skewed 3:2
	b.SetWeights(o2, []float64{3, 2})
	o3 := b.AddOperator("O3", 1, kind, 1)
	b.Connect(o1, o3, topology.Full)
	b.Connect(o2, o3, topology.Full)
	return b.Build()
}

// TestPaperExample reproduces the worked example of §III-A1: with task
// t22 failed, ILout of the downstream task is 2/5 for a correlated-input
// operator and 1/4 for an independent-input operator.
func TestPaperExample(t *testing.T) {
	for _, tc := range []struct {
		kind topology.InputKind
		want float64
	}{
		{topology.Correlated, 2.0 / 5.0},
		{topology.Independent, 1.0 / 4.0},
	} {
		topo, err := fig2(tc.kind)
		if err != nil {
			t.Fatal(err)
		}
		m := NewModel(topo)
		e := m.NewEvaluator()
		failed := make([]bool, topo.NumTasks())
		// t22 is the second task of O2 (rate 2).
		failed[topo.TasksOf(1)[1]] = true
		il := e.OutputLoss(failed)
		sink := topo.SinkTasks()[0]
		if !almostEqual(il[sink], tc.want) {
			t.Errorf("%v: ILout(sink) = %v, want %v", tc.kind, il[sink], tc.want)
		}
		if of := e.OF(failed); !almostEqual(of, 1-tc.want) {
			t.Errorf("%v: OF = %v, want %v", tc.kind, of, 1-tc.want)
		}
	}
}

func TestNoFailurePerfectFidelity(t *testing.T) {
	topo, err := fig2(topology.Correlated)
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	failed := make([]bool, topo.NumTasks())
	if of := e.OF(failed); !almostEqual(of, 1) {
		t.Errorf("OF with no failures = %v, want 1", of)
	}
	if ic := e.IC(failed); !almostEqual(ic, 1) {
		t.Errorf("IC with no failures = %v, want 1", ic)
	}
}

func TestAllFailedZeroFidelity(t *testing.T) {
	topo, err := fig2(topology.Independent)
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	failed := make([]bool, topo.NumTasks())
	for i := range failed {
		failed[i] = true
	}
	if of := e.OF(failed); of != 0 {
		t.Errorf("OF with all failed = %v, want 0", of)
	}
	if ic := e.IC(failed); ic != 0 {
		t.Errorf("IC with all failed = %v, want 0", ic)
	}
}

// TestJoinTotalLoss: losing an entire input stream of a correlated-input
// operator destroys all of its output, but only part of an
// independent-input operator's output.
func TestJoinTotalLoss(t *testing.T) {
	for _, tc := range []struct {
		kind topology.InputKind
		want float64
	}{
		{topology.Correlated, 1},
		{topology.Independent, 3.0 / 8.0}, // lost stream has rate 3 of 8
	} {
		topo, err := fig2(tc.kind)
		if err != nil {
			t.Fatal(err)
		}
		e := NewModel(topo).NewEvaluator()
		failed := make([]bool, topo.NumTasks())
		for _, id := range topo.TasksOf(0) { // kill all of O1
			failed[id] = true
		}
		il := e.OutputLoss(failed)
		sink := topo.SinkTasks()[0]
		if !almostEqual(il[sink], tc.want) {
			t.Errorf("%v: ILout = %v, want %v", tc.kind, il[sink], tc.want)
		}
	}
}

// TestSinkFailure: a failed sink task loses its own share of the output.
func TestSinkFailure(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 2, 100)
	sink := b.AddOperator("sink", 2, topology.Independent, 1)
	b.Connect(src, sink, topology.OneToOne)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	failed := make([]bool, topo.NumTasks())
	failed[topo.TasksOf(1)[0]] = true
	if of := e.OF(failed); !almostEqual(of, 0.5) {
		t.Errorf("OF = %v, want 0.5", of)
	}
}

// TestICIgnoresCorrelation: the defining defect of IC (per the paper's
// §VI-B): when one input stream of a join is lost, IC still credits the
// processing of the other stream while OF correctly reports total loss.
func TestICIgnoresCorrelation(t *testing.T) {
	topo, err := fig2(topology.Correlated)
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	failed := make([]bool, topo.NumTasks())
	for _, id := range topo.TasksOf(0) {
		failed[id] = true
	}
	of := e.OF(failed)
	ic := e.IC(failed)
	if of != 0 {
		t.Fatalf("OF = %v, want 0", of)
	}
	if ic <= 0.3 {
		t.Fatalf("IC = %v, want sizeable despite join loss", ic)
	}
}

func TestOFSingleFailure(t *testing.T) {
	topo, err := fig2(topology.Independent)
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	// Failing the heavier O2 task (rate 3) must hurt more than the
	// lighter one (rate 2).
	heavy := e.OFSingleFailure(topo.TasksOf(1)[0])
	light := e.OFSingleFailure(topo.TasksOf(1)[1])
	if heavy >= light {
		t.Errorf("OF(fail heavy)=%v should be < OF(fail light)=%v", heavy, light)
	}
	sink := topo.SinkTasks()[0]
	if of := e.OFSingleFailure(sink); of != 0 {
		t.Errorf("OF(fail sink) = %v, want 0", of)
	}
}

// randomLayeredTopo builds a small random layered topology for property
// tests. Layers are fully connected, with random kinds and parallelism.
func randomLayeredTopo(rng *rand.Rand) *topology.Topology {
	b := topology.NewBuilder()
	layers := 2 + rng.Intn(3)
	prev := b.AddSource("src", 1+rng.Intn(3), 100+rng.Float64()*900)
	for l := 1; l < layers; l++ {
		kind := topology.Independent
		if rng.Intn(2) == 0 {
			kind = topology.Correlated
		}
		op := b.AddOperator("op", 1+rng.Intn(4), kind, 0.1+rng.Float64())
		b.Connect(prev, op, topology.Full)
		prev = op
	}
	topo, err := b.Build()
	if err != nil {
		panic(err)
	}
	return topo
}

// Property: OF and IC are always within [0,1] and removing a failure
// never lowers them (antitone in the failure set).
func TestMetricBoundsAndMonotonicity(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomLayeredTopo(rng)
		e := NewModel(topo).NewEvaluator()
		n := topo.NumTasks()
		failed := make([]bool, n)
		for i := range failed {
			failed[i] = rng.Intn(3) == 0
		}
		of := e.OF(failed)
		ic := e.IC(failed)
		if of < 0 || of > 1 || ic < 0 || ic > 1 {
			return false
		}
		// un-fail one failed task; metrics must not decrease
		for i := range failed {
			if failed[i] {
				failed[i] = false
				if e.OF(failed) < of-1e-12 {
					return false
				}
				if e.IC(failed) < ic-1e-12 {
					return false
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: OFPlan is monotone in plan growth — replicating one more
// task never lowers the worst-case OF.
func TestOFPlanMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := randomLayeredTopo(rng)
		e := NewModel(topo).NewEvaluator()
		n := topo.NumTasks()
		plan := make([]bool, n)
		for i := range plan {
			plan[i] = rng.Intn(2) == 0
		}
		base := e.OFPlan(plan)
		for i := range plan {
			if !plan[i] {
				plan[i] = true
				if e.OFPlan(plan) < base-1e-12 {
					return false
				}
				plan[i] = false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyPlanAndFullPlan(t *testing.T) {
	topo, err := fig2(topology.Correlated)
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	n := topo.NumTasks()
	none := make([]bool, n)
	if of := e.OFPlan(none); of != 0 {
		t.Errorf("OFPlan(empty) = %v, want 0", of)
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	if of := e.OFPlan(all); !almostEqual(of, 1) {
		t.Errorf("OFPlan(all) = %v, want 1", of)
	}
	if ic := e.ICPlan(all); !almostEqual(ic, 1) {
		t.Errorf("ICPlan(all) = %v, want 1", ic)
	}
}

func TestMismatchedVectorPanics(t *testing.T) {
	topo, err := fig2(topology.Correlated)
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched failure vector")
		}
	}()
	e.OF(make([]bool, 1))
}

func TestModelTopologyAccessor(t *testing.T) {
	topo, err := fig2(topology.Correlated)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(topo)
	if m.Topology() != topo {
		t.Error("Topology() did not return the original topology")
	}
}

// TestDeepPropagation checks loss propagation through a 4-operator
// chain: failing one of two merge-input tasks halves the fidelity at
// every level below.
func TestDeepPropagation(t *testing.T) {
	b := topology.NewBuilder()
	src := b.AddSource("src", 4, 100)
	o1 := b.AddOperator("O1", 2, topology.Independent, 1)
	o2 := b.AddOperator("O2", 1, topology.Independent, 1)
	b.Connect(src, o1, topology.Merge)
	b.Connect(o1, o2, topology.Merge)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewModel(topo).NewEvaluator()
	failed := make([]bool, topo.NumTasks())
	failed[topo.TasksOf(1)[0]] = true // one O1 task
	if of := e.OF(failed); !almostEqual(of, 0.5) {
		t.Errorf("OF = %v, want 0.5", of)
	}
	// Failing one source task upstream of the other O1 task loses a
	// quarter of the input.
	failed = make([]bool, topo.NumTasks())
	failed[topo.TasksOf(0)[3]] = true
	if of := e.OF(failed); !almostEqual(of, 0.75) {
		t.Errorf("OF = %v, want 0.75", of)
	}
}
