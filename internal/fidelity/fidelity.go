// Package fidelity implements the output-quality models of Su & Zhou
// (ICDE 2016), §III: the operator output-loss model (Eqs. 1–3), the
// Output Fidelity metric (Eq. 4) and, for comparison, the Internal
// Completeness (IC) metric of Bellavista et al. (EDBT'14) used as a
// baseline in the paper's evaluation.
//
// Output Fidelity estimates the quality of the tentative outputs a
// topology produces while some of its tasks are failed. Information
// loss (IL) is propagated from the failed tasks through the topology
// DAG down to the sink operators, distinguishing correlated-input
// (join) operators from independent-input operators.
package fidelity

import (
	"fmt"
	"sync"

	"repro/internal/topology"
)

// Model evaluates output-quality metrics for one topology. It
// precomputes the task traversal order and failure-free rates so that
// repeated evaluations (as performed by the planning algorithms) are
// cheap. A Model is safe for concurrent use by multiple goroutines as
// long as each goroutine uses its own Evaluator.
type Model struct {
	topo *topology.Topology
	// taskOrder lists all task IDs such that every task appears after
	// all of its upstream tasks.
	taskOrder []topology.TaskID
	sinkTasks []topology.TaskID
	sinkRate  float64 // total failure-free output rate of the sink tasks
	// normalIn[t] is the total failure-free input rate of task t,
	// used by the IC metric.
	normalIn    []float64
	totalNormal float64

	// singleOF memoizes the per-task single-failure OF values (the
	// greedy ranking criterion), computed once on first use.
	singleOnce sync.Once
	singleOF   []float64
}

// NewModel builds an evaluation model for the given topology.
func NewModel(t *topology.Topology) *Model {
	m := &Model{topo: t}
	for _, op := range t.OpOrder() {
		m.taskOrder = append(m.taskOrder, t.TasksOf(op)...)
	}
	m.sinkTasks = t.SinkTasks()
	for _, id := range m.sinkTasks {
		m.sinkRate += t.OutRate(id)
	}
	m.normalIn = make([]float64, t.NumTasks())
	for _, task := range t.Tasks {
		var in float64
		for _, is := range t.InputsOf(task.ID) {
			in += is.Rate()
		}
		if len(t.InputsOf(task.ID)) == 0 {
			// Source tasks process their emitted stream.
			in = t.OutRate(task.ID)
		}
		m.normalIn[task.ID] = in
		m.totalNormal += in
	}
	return m
}

// Topology returns the topology the model was built for.
func (m *Model) Topology() *topology.Topology { return m.topo }

// Evaluator holds reusable scratch buffers for metric evaluation. Not
// safe for concurrent use.
type Evaluator struct {
	m      *Model
	il     []float64 // ILout per task
	rate   []float64 // effective received rate per task (IC)
	failed []bool
}

// NewEvaluator returns an evaluator backed by the model.
func (m *Model) NewEvaluator() *Evaluator {
	n := m.topo.NumTasks()
	return &Evaluator{
		m:      m,
		il:     make([]float64, n),
		rate:   make([]float64, n),
		failed: make([]bool, n),
	}
}

// setFailed loads the failure set into the scratch buffer.
func (e *Evaluator) setFailed(failed []bool) {
	if len(failed) != len(e.failed) {
		panic(fmt.Sprintf("fidelity: failure vector has %d entries, topology has %d tasks", len(failed), len(e.failed)))
	}
	copy(e.failed, failed)
}

// OutputLoss computes ILout for every task under the given failure set
// (failed[i] refers to TaskID i). The returned slice aliases the
// evaluator's scratch buffer and is valid until the next call.
func (e *Evaluator) OutputLoss(failed []bool) []float64 {
	e.setFailed(failed)
	t := e.m.topo
	for _, id := range e.m.taskOrder {
		if e.failed[id] {
			e.il[id] = 1
			continue
		}
		ins := t.InputsOf(id)
		if len(ins) == 0 { // live source task: no loss
			e.il[id] = 0
			continue
		}
		kind := t.Ops[t.Tasks[id].Op].Kind
		if kind == topology.Correlated {
			// Eq. 2: ILout = 1 - prod_j (1 - ILin_j)
			prod := 1.0
			for _, in := range ins {
				prod *= 1 - e.inputLoss(in)
			}
			e.il[id] = clamp01(1 - prod)
		} else {
			// Eq. 3: rate-weighted average of the input-stream losses.
			var num, den float64
			for _, in := range ins {
				r := in.Rate()
				num += r * e.inputLoss(in)
				den += r
			}
			if den == 0 {
				e.il[id] = 1
			} else {
				e.il[id] = clamp01(num / den)
			}
		}
	}
	return e.il
}

// inputLoss computes Eq. 1: the rate-weighted information loss of one
// input stream from the losses of its substreams. The loss of a
// substream equals the output loss of its source task.
func (e *Evaluator) inputLoss(in topology.InputStream) float64 {
	var num, den float64
	for _, sub := range in.Subs {
		num += sub.Rate * e.il[sub.From]
		den += sub.Rate
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// OF computes Output Fidelity (Eq. 4) under the given failure set:
// the failure-free-rate-weighted complement of the sink tasks' output
// losses. OF is 1 when nothing is failed and 0 when all sink output is
// lost.
func (e *Evaluator) OF(failed []bool) float64 {
	il := e.OutputLoss(failed)
	if e.m.sinkRate == 0 {
		return 0
	}
	var lost float64
	for _, id := range e.m.sinkTasks {
		lost += e.m.topo.OutRate(id) * il[id]
	}
	return clamp01(1 - lost/e.m.sinkRate)
}

// OFPlan computes the Output Fidelity of a partially active replication
// plan under the paper's worst-case correlated failure assumption (§IV):
// every task that is not actively replicated is failed.
// replicated[i] refers to TaskID i.
func (e *Evaluator) OFPlan(replicated []bool) float64 {
	if len(replicated) != len(e.failed) {
		panic(fmt.Sprintf("fidelity: plan vector has %d entries, topology has %d tasks", len(replicated), len(e.failed)))
	}
	failed := make([]bool, len(replicated))
	for i, r := range replicated {
		failed[i] = !r
	}
	return e.OF(failed)
}

// OFSingleFailure computes OF when only the given task fails; this is
// the ranking criterion of the paper's greedy algorithm (Alg. 2).
func (e *Evaluator) OFSingleFailure(id topology.TaskID) float64 {
	failed := make([]bool, e.m.topo.NumTasks())
	failed[id] = true
	return e.OF(failed)
}

// SingleFailureOFs returns the OF of every single-task failure, indexed
// by TaskID. The vector is computed once per model and shared: repeated
// greedy rankings (and greedy runs racing inside a planner portfolio)
// reuse it instead of re-propagating N failure sets. The returned slice
// must not be modified.
func (m *Model) SingleFailureOFs() []float64 {
	m.singleOnce.Do(func() {
		e := m.NewEvaluator()
		out := make([]float64, m.topo.NumTasks())
		for id := range out {
			out[id] = e.OFSingleFailure(topology.TaskID(id))
		}
		m.singleOF = out
	})
	return m.singleOF
}

// IC computes the Internal Completeness baseline metric: the fraction
// of tuples expected to be processed by all tasks under the failure set
// relative to failure-free processing. Unlike OF, IC propagates plain
// rates and ignores input-stream correlation, which is why it
// mispredicts the quality of queries with joins (§VI-B).
func (e *Evaluator) IC(failed []bool) float64 {
	e.setFailed(failed)
	t := e.m.topo
	if e.m.totalNormal == 0 {
		return 0
	}
	var processed float64
	for _, id := range e.m.taskOrder {
		if e.failed[id] {
			e.rate[id] = 0
			continue
		}
		ins := t.InputsOf(id)
		if len(ins) == 0 {
			e.rate[id] = t.OutRate(id)
			processed += e.rate[id]
			continue
		}
		var received float64
		for _, in := range ins {
			for _, sub := range in.Subs {
				// fraction of the substream still flowing
				full := t.OutRate(sub.From)
				if full > 0 {
					received += sub.Rate * e.rate[sub.From] / full
				}
			}
		}
		processed += received
		e.rate[id] = received * t.Ops[t.Tasks[id].Op].Selectivity
	}
	return clamp01(processed / e.m.totalNormal)
}

// ICPlan computes IC under the worst-case correlated failure of a plan,
// mirroring OFPlan.
func (e *Evaluator) ICPlan(replicated []bool) float64 {
	failed := make([]bool, len(replicated))
	for i, r := range replicated {
		failed[i] = !r
	}
	return e.IC(failed)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
